package hierdb

import "testing"

// TestAllFigureWrappers smoke-tests every figure driver through the public
// facade at a minimal scale.
func TestAllFigureWrappers(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by benchmarks")
	}
	s := BenchScale()
	s.Queries = 1
	s.Fig6Procs = []int{2}
	s.Fig7Procs = []int{2}
	s.Fig7Rates = []float64{0, 0.3}
	s.Fig7Plans = 1
	s.Fig7Draws = 1
	s.Fig8Procs = []int{1, 2}
	s.Fig9Skews = []float64{0, 1}
	s.Fig9Procs = 2
	s.Fig10PPN = []int{2}

	drivers := []struct {
		id  string
		run func() *Figure
	}{
		{"fig6", func() *Figure { return Fig6(s, nil) }},
		{"fig7", func() *Figure { return Fig7(s, nil) }},
		{"fig8", func() *Figure { return Fig8(s, nil) }},
		{"fig9", func() *Figure { return Fig9(s, nil) }},
		{"transfer", func() *Figure { return Transfer(s, nil) }},
		{"fig10", func() *Figure { return Fig10(s, nil) }},
		{"shapes", func() *Figure { return Shapes(s, nil) }},
		{"placement", func() *Figure { return PlacementSkew(s, nil) }},
		{"chains", func() *Figure { return ConcurrentChains(s, nil) }},
	}
	for _, d := range drivers {
		fig := d.run()
		if fig == nil || len(fig.Series) == 0 {
			t.Fatalf("%s: empty figure", d.id)
		}
		if fig.String() == "" {
			t.Fatalf("%s: empty render", d.id)
		}
		for _, series := range fig.Series {
			for _, y := range series.Y {
				if y < 0 {
					t.Fatalf("%s: negative point in %q: %v", d.id, series.Label, series.Y)
				}
			}
		}
	}
}
