package hierdb

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"testing"

	"hierdb/internal/leaktest"
	"hierdb/internal/store"
	"hierdb/internal/vec"
)

// storeRows builds the deterministic mixed-type relation the
// file-backed facade tests share: int key, modular int, nullable
// string, float.
func storeRows(n int) []vec.Row {
	rows := make([]vec.Row, n)
	for i := range rows {
		var s any = fmt.Sprintf("s%03d", i%7)
		if i%97 == 0 {
			s = nil
		}
		rows[i] = vec.Row{i, i % 10, s, float64(i) / 4}
	}
	return rows
}

// writeStoreFile writes rows to a table file under t.TempDir with
// small chunks, so even modest relations span many chunks.
func writeStoreFile(t *testing.T, rows []vec.Row, cols []string, chunkRows int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.hdb")
	if err := store.WriteTable(path, cols, chunkRows, rows); err != nil {
		t.Fatal(err)
	}
	return path
}

// multiset renders rows order-insensitively for equality checks.
func multiset(rows []Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprint(r)
	}
	sort.Strings(out)
	return out
}

func sameMultiset(t *testing.T, got, want []Row) {
	t.Helper()
	g, w := multiset(got), multiset(want)
	if len(g) != len(w) {
		t.Fatalf("row count: got %d, want %d", len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("row multisets differ at %d:\n  got  %s\n  want %s", i, g[i], w[i])
		}
	}
}

// TestTableFileMatchesMemory runs the same scans and a self-join over
// a file-backed table and its in-memory twin, requiring identical
// multisets and live disk-scan counters.
func TestTableFileMatchesMemory(t *testing.T) {
	leaktest.Check(t, 2)
	const n = 5000
	rows := storeRows(n)
	cols := []string{"id", "m", "s", "f"}
	path := writeStoreFile(t, rows, cols, 256)

	db := Open(WithWorkers(2))
	defer db.Close()
	if err := db.RegisterTableFile("fT", path); err != nil {
		t.Fatal(err)
	}
	mem := &Table{Name: "mT", Cols: cols}
	for _, r := range rows {
		mem.Rows = append(mem.Rows, Row(r))
	}
	if err := db.RegisterTable(mem); err != nil {
		t.Fatal(err)
	}

	run := func(q *Query) ([]Row, *EngineStats) {
		t.Helper()
		rs, st, err := q.Collect(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rs, st
	}

	t.Run("FullScan", func(t *testing.T) {
		got, st := run(db.Scan("fT"))
		want, _ := run(db.Scan("mT"))
		sameMultiset(t, got, want)
		if st.ChunksScanned == 0 || st.DiskBytesRead == 0 {
			t.Fatalf("disk counters dead on a file scan: %+v", st)
		}
		if st.ChunksSkipped != 0 {
			t.Fatalf("predicate-free scan skipped %d chunks", st.ChunksSkipped)
		}
	})

	t.Run("WhereAndFilter", func(t *testing.T) {
		preds := []Pred{{Col: 1, Op: Eq, Val: 3}, {Col: 2, Op: NotNull}}
		filt := func(r Row) bool { return r[0].(int)%2 == 1 }
		got, _ := run(db.Scan("fT", filt).Where(preds...))
		want, _ := run(db.Scan("mT", filt).Where(preds...))
		if len(want) == 0 {
			t.Fatal("test predicate selects nothing; broken fixture")
		}
		sameMultiset(t, got, want)
	})

	t.Run("SelfJoin", func(t *testing.T) {
		got, st := run(db.Scan("fT").Where(Pred{Col: 0, Op: Lt, Val: 600}).
			Join(db.Scan("fT"), KeyCol(1), KeyCol(1)))
		want, _ := run(db.Scan("mT").Where(Pred{Col: 0, Op: Lt, Val: 600}).
			Join(db.Scan("mT"), KeyCol(1), KeyCol(1)))
		sameMultiset(t, got, want)
		if st.ChunksSkipped == 0 {
			t.Fatalf("id<600 over 256-row chunks should prune: %+v", st)
		}
	})

	t.Run("GroupBy", func(t *testing.T) {
		aggs := func() []Aggregation {
			return []Aggregation{
				{Func: Count},
				{Func: Sum, Arg: func(r Row) float64 { return r[3].(float64) }},
			}
		}
		got, _, err := db.Scan("fT").GroupBy(KeyCol(1), aggs()...).Collect(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := db.Scan("mT").GroupBy(KeyCol(1), aggs()...).Collect(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		sameMultiset(t, got, want)
	})
}

// TestTableFilePruningStats proves zone-map pruning is observable:
// a selective range predicate must skip chunks and read measurably
// fewer bytes than the unpruned scan of the same file.
func TestTableFilePruningStats(t *testing.T) {
	leaktest.Check(t, 2)
	rows := storeRows(8 << 10)
	path := writeStoreFile(t, rows, []string{"id", "m", "s", "f"}, 512)
	db := Open(WithWorkers(2))
	defer db.Close()
	if err := db.RegisterTableFile("t", path); err != nil {
		t.Fatal(err)
	}

	_, full, err := db.Scan("t").Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got, pruned, err := db.Scan("t").Where(Pred{Col: 0, Op: Ge, Val: 4096}, Pred{Col: 0, Op: Lt, Val: 4200}).
		Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 104 {
		t.Fatalf("got %d rows, want 104", len(got))
	}
	if pruned.ChunksSkipped == 0 {
		t.Fatalf("range predicate pruned nothing: %+v", pruned)
	}
	if pruned.DiskBytesRead >= full.DiskBytesRead {
		t.Fatalf("pruned scan read %d bytes, unpruned %d — pruning saved no I/O",
			pruned.DiskBytesRead, full.DiskBytesRead)
	}
	if pruned.ChunksScanned+pruned.ChunksSkipped != full.ChunksScanned {
		t.Fatalf("scanned %d + skipped %d != total chunks %d",
			pruned.ChunksScanned, pruned.ChunksSkipped, full.ChunksScanned)
	}
}

// TestTableFileMultiNode streams a file-backed table on a 4-node DB:
// chunks are assigned positionally to node fragments, results must
// match the in-memory hash-partitioned run, and the per-node stats
// must sum to the query totals.
func TestTableFileMultiNode(t *testing.T) {
	leaktest.Check(t, 2)
	rows := storeRows(4000)
	cols := []string{"id", "m", "s", "f"}
	path := writeStoreFile(t, rows, cols, 128)
	db := Open(WithNodes(4), WithWorkers(2))
	defer db.Close()
	if err := db.RegisterTableFile("fT", path); err != nil {
		t.Fatal(err)
	}
	mem := &Table{Name: "mT", Cols: cols}
	for _, r := range rows {
		mem.Rows = append(mem.Rows, Row(r))
	}
	if err := db.RegisterTable(mem); err != nil {
		t.Fatal(err)
	}

	got, st, err := db.Scan("fT").Where(Pred{Col: 0, Op: Lt, Val: 1000}).
		Join(db.Scan("mT"), KeyCol(1), KeyCol(1)).Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := db.Scan("mT").Where(Pred{Col: 0, Op: Lt, Val: 1000}).
		Join(db.Scan("mT"), KeyCol(1), KeyCol(1)).Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sameMultiset(t, got, want)

	if len(st.Nodes) != 4 {
		t.Fatalf("want 4 node stats, got %d", len(st.Nodes))
	}
	var scanned, skipped, bytes int64
	nodesWithChunks := 0
	for _, ns := range st.Nodes {
		scanned += ns.ChunksScanned
		skipped += ns.ChunksSkipped
		bytes += ns.DiskBytesRead
		if ns.ChunksScanned+ns.ChunksSkipped > 0 {
			nodesWithChunks++
		}
	}
	if scanned != st.ChunksScanned || skipped != st.ChunksSkipped || bytes != st.DiskBytesRead {
		t.Fatalf("node stats (%d,%d,%d) do not sum to query totals (%d,%d,%d)",
			scanned, skipped, bytes, st.ChunksScanned, st.ChunksSkipped, st.DiskBytesRead)
	}
	if nodesWithChunks < 2 {
		t.Fatalf("chunk assignment degenerate: only %d of 4 nodes touched chunks", nodesWithChunks)
	}
	if st.ChunksSkipped == 0 {
		t.Fatalf("id<1000 over 128-row chunks should prune: %+v", st)
	}
}

// TestTableFileLifecycle covers handle hygiene: early Rows.Close and
// context cancellation mid-scan must not wedge workers or leak
// goroutines, DB.Close must close the table files it opened, and
// registration failure paths must not leave stray handles (leaktest
// plus reopening the same path catches a double-close or leak).
func TestTableFileLifecycle(t *testing.T) {
	leaktest.Check(t, 2)
	rows := storeRows(20 << 10)
	path := writeStoreFile(t, rows, []string{"id", "m", "s", "f"}, 256)

	t.Run("EarlyRowsClose", func(t *testing.T) {
		leaktest.Check(t, 2)
		db := Open(WithWorkers(2))
		defer db.Close()
		if err := db.RegisterTableFile("t", path); err != nil {
			t.Fatal(err)
		}
		rs, err := db.Scan("t").Join(db.Scan("t"), KeyCol(1), KeyCol(1)).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !rs.Next() {
			t.Fatalf("no first row: %v", rs.Err())
		}
		if err := rs.Close(); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("CtxCancelMidScan", func(t *testing.T) {
		leaktest.Check(t, 2)
		db := Open(WithWorkers(2))
		defer db.Close()
		if err := db.RegisterTableFile("t", path); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		rs, err := db.Scan("t").Join(db.Scan("t"), KeyCol(1), KeyCol(1)).Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		rs.Next()
		cancel()
		for rs.Next() {
		}
		rs.Close()
	})

	t.Run("CloseThenReopen", func(t *testing.T) {
		db := Open(WithWorkers(2))
		if err := db.RegisterTableFile("t", path); err != nil {
			t.Fatal(err)
		}
		if _, _, err := db.Scan("t").Collect(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := db.Close(); err != nil {
			t.Fatalf("Close with open table files: %v", err)
		}
		if err := db.Close(); err != nil {
			t.Fatalf("second Close not idempotent: %v", err)
		}
		// The handle is really closed: a fresh open of the same path must
		// see an intact file (and a query on the closed DB must refuse).
		f, err := store.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		f.Close()
		if _, _, err := db.Scan("t").Collect(context.Background()); err == nil {
			t.Fatal("query on closed DB succeeded")
		}
	})

	t.Run("RegisterErrors", func(t *testing.T) {
		db := Open(WithWorkers(2))
		defer db.Close()
		if err := db.RegisterTableFile("t", path); err != nil {
			t.Fatal(err)
		}
		if err := db.RegisterTableFile("t", path); err == nil {
			t.Fatal("duplicate name accepted")
		}
		if err := db.RegisterTableFile("u", filepath.Join(t.TempDir(), "missing.hdb")); err == nil {
			t.Fatal("missing file accepted")
		}
		if err := db.RegisterTableFile("", path); err == nil {
			t.Fatal("empty name accepted")
		}
	})
}
